//! The RQ1(c) experiment: GOLF on a real service over 24 hours.
//!
//! The paper deploys GOLF on five instances of a production Uber service;
//! over 24 hours it detects **252 individual partial deadlocks** which
//! deduplicate (by stack trace) to **3 programming errors**, all of the
//! `SendEmail` shape (Listing 7): a helper returns a completion channel the
//! caller never reads.
//!
//! We reproduce the deployment: a service with three independently leaky
//! endpoints — `SendEmail` (forgotten completion channel), `AuditLog`
//! (abandoned timeout), and `NotifyPeer` (double send) — handles diurnal
//! traffic for a simulated day while GOLF reports through the "logging
//! infrastructure" (the report list).

use golf_core::{GcMode, GolfConfig, PacerConfig, Session};
use golf_runtime::{BinOp, FuncBuilder, ProgramSet, SelectSpec, Vm, VmConfig};
use std::collections::BTreeMap;

/// Deployment parameters.
#[derive(Debug, Clone)]
pub struct Rq1cConfig {
    /// Service instances (the paper deploys five).
    pub instances: usize,
    /// Simulated hours (the paper observes 24).
    pub hours: usize,
    /// Ticks per simulated hour.
    pub ticks_per_hour: u64,
    /// Concurrent request drivers per instance.
    pub connections: usize,
    /// Per-endpoint leak rates, per mille of requests hitting the endpoint.
    pub leak_per_mille: [i64; 3],
    /// Base seed (each instance derives its own).
    pub seed: u64,
}

impl Default for Rq1cConfig {
    fn default() -> Self {
        Rq1cConfig {
            instances: 5,
            hours: 24,
            ticks_per_hour: 1_200,
            connections: 6,
            leak_per_mille: [9, 4, 3],
            seed: 0x24B0,
        }
    }
}

/// Aggregated deployment results.
#[derive(Debug, Clone)]
pub struct Rq1cResult {
    /// Individual partial deadlocks across all instances (paper: 252).
    pub individual_reports: usize,
    /// Deduplicated source locations `(block site, spawn site)` with their
    /// individual counts (paper: 3 errors).
    pub by_location: BTreeMap<(String, String), usize>,
    /// Requests served across all instances.
    pub requests_served: u64,
}

/// Builds one service instance with the three leaky endpoints. Returns the
/// program and the id of the served-request counter global.
fn build_instance(config: &Rq1cConfig) -> (ProgramSet, golf_runtime::GlobalId) {
    let mut p = ProgramSet::new();
    let conn_site = p.site("main:conn");
    let s_email = p.site("SendEmail:104");
    let s_audit = p.site("AuditLog:77");
    let s_notify = p.site("NotifyPeer:58");

    // SendEmail (Listing 7): completion channel nobody reads.
    let mut b = FuncBuilder::new("emailTask", 1);
    let done = b.param(0);
    b.sleep(3);
    let v = b.int(1);
    b.send(done, v);
    b.ret(None);
    let email_task = p.define(b);

    let mut b = FuncBuilder::new("send_email", 0);
    let done = b.var("done");
    b.make_chan(done, 0);
    b.go(email_task, &[done], s_email);
    let leak = b.var("leak");
    b.rand_chance(leak, config.leak_per_mille[0], 1000);
    let skip = b.label();
    b.jump_if(leak, skip); // HandleRequest forgets the channel
    b.recv(done, None);
    b.bind(skip);
    b.ret(None);
    let send_email = p.define(b);

    // AuditLog: the result send loses a race against the caller's timeout.
    let mut b = FuncBuilder::new("auditWorker", 1);
    let res = b.param(0);
    b.sleep(25);
    let v = b.int(1);
    b.send(res, v);
    b.ret(None);
    let audit_worker = p.define(b);

    let mut b = FuncBuilder::new("audit_log", 0);
    let res = b.var("res");
    b.make_chan(res, 0);
    let leak = b.var("leak");
    b.rand_chance(leak, config.leak_per_mille[1], 1000);
    let buggy = b.label();
    let done = b.label();
    b.jump_if(leak, buggy);
    // Healthy path: wait for the audit to land.
    b.go(audit_worker, &[res], s_audit);
    b.recv(res, None);
    b.jump(done);
    b.bind(buggy);
    // Buggy path: an aggressive timeout abandons the worker.
    b.go(audit_worker, &[res], s_audit);
    let t = b.var("t");
    b.timer_chan(t, 4);
    let l_res = b.label();
    let l_to = b.label();
    b.select(SelectSpec::new().recv(res, None, l_res).recv(t, None, l_to));
    b.bind(l_res);
    b.bind(l_to);
    b.bind(done);
    b.ret(None);
    let audit_log = p.define(b);

    // NotifyPeer: double send; the caller takes the first message only.
    let mut b = FuncBuilder::new("notifyWorker", 2);
    let ch1 = b.param(0);
    let ch2 = b.param(1);
    let v = b.int(1);
    b.send(ch1, v);
    b.send(ch2, v);
    b.ret(None);
    let notify_worker = p.define(b);

    let mut b = FuncBuilder::new("notify_peer", 0);
    let ch1 = b.var("ch1");
    let ch2 = b.var("ch2");
    let leak = b.var("leak");
    b.rand_chance(leak, config.leak_per_mille[2], 1000);
    // Healthy requests use buffered channels (the fix already shipped for
    // most call sites); the buggy call site still passes unbuffered ones.
    b.if_else(
        leak,
        |b| {
            b.make_chan(ch1, 0);
            b.make_chan(ch2, 0);
        },
        |b| {
            b.make_chan(ch1, 1);
            b.make_chan(ch2, 1);
        },
    );
    b.go(notify_worker, &[ch1, ch2], s_notify);
    let l1 = b.label();
    let l2 = b.label();
    let fin = b.label();
    b.select(SelectSpec::new().recv(ch1, None, l1).recv(ch2, None, l2));
    b.bind(l1);
    b.jump(fin);
    b.bind(l2);
    b.bind(fin);
    b.ret(None);
    let notify_peer = p.define(b);

    // conn: loop { think; pick an endpoint; count }.
    let mut b = FuncBuilder::new("conn", 1); // counter
    let counter = b.param(0);
    b.forever(|b| {
        b.sleep(7);
        let which = b.var("which");
        b.rand_int(which, 3);
        let zero = b.int(0);
        let one = b.int(1);
        let is0 = b.var("is0");
        let is1 = b.var("is1");
        b.bin(BinOp::Eq, is0, which, zero);
        b.bin(BinOp::Eq, is1, which, one);
        b.if_else(
            is0,
            |b| b.call(send_email, &[], None),
            |b| {
                b.if_else(
                    is1,
                    |b| b.call(audit_log, &[], None),
                    |b| b.call(notify_peer, &[], None),
                );
            },
        );
        let c = b.var("c");
        b.cell_get(c, counter);
        b.bin(BinOp::Add, c, c, one);
        b.cell_set(counter, c);
    });
    let conn = p.define(b);

    let counter_global = p.global("served");
    let mut b = FuncBuilder::new("main", 0);
    let counter = b.var("counter");
    let zero = b.int(0);
    b.new_cell(counter, zero);
    b.set_global(counter_global, counter);
    b.repeat(config.connections as i64, |b, _| {
        b.go(conn, &[counter], conn_site);
    });
    b.forever(|b| b.sleep(10_000));
    p.define(b);
    (p, counter_global)
}

/// Runs the deployment: `instances` services for `hours` simulated hours.
pub fn run_rq1c(config: &Rq1cConfig) -> Rq1cResult {
    let mut by_location: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut individual = 0usize;
    let mut served = 0u64;

    for instance in 0..config.instances {
        let (p, served_global) = build_instance(config);
        let vm = Vm::boot(
            p,
            VmConfig {
                gomaxprocs: 4,
                seed: config.seed.wrapping_add(instance as u64 * 0x9E37),
                ..VmConfig::default()
            },
        );
        let mut session =
            Session::new(vm, GcMode::Golf, GolfConfig::default(), PacerConfig::default());
        session.engine_mut().set_keep_history(false);
        for _ in 0..config.hours {
            session.run(config.ticks_per_hour);
            // Go forces a GC at least every two minutes; hourly is ample
            // for stable leaks.
            session.collect();
        }
        session.collect();
        individual += session.reports().len();
        for ((block, site), count) in golf_core::dedup_counts(session.reports()) {
            *by_location.entry((block.to_string(), site.to_string())).or_insert(0) += count;
        }
        // Count served requests via the instrumented counter.
        if let golf_runtime::Value::Ref(h) = session.vm().global(served_global) {
            if let Some(golf_runtime::Object::Cell(v)) = session.vm().heap().get(h) {
                served += v.as_int().unwrap_or(0).max(0) as u64;
            }
        }
    }

    Rq1cResult { individual_reports: individual, by_location, requests_served: served }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_finds_the_three_errors() {
        // Elevated leak rates so the short test window still exposes all
        // three errors (the full calibrated run lives in the rq1c binary).
        let r = run_rq1c(&Rq1cConfig {
            instances: 2,
            hours: 4,
            ticks_per_hour: 800,
            leak_per_mille: [40, 25, 20],
            ..Rq1cConfig::default()
        });
        assert_eq!(r.by_location.len(), 3, "{:#?}", r.by_location);
        assert!(r.individual_reports > 10, "{}", r.individual_reports);
        assert!(r.requests_served > 100);
        let sites: Vec<&str> = r.by_location.keys().map(|(_, site)| site.as_str()).collect();
        assert!(sites.contains(&"SendEmail:104"));
        assert!(sites.contains(&"AuditLog:77"));
        assert!(sites.contains(&"NotifyPeer:58"));
    }
}
