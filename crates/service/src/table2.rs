//! The Table 2 experiment: the controlled service under four scenarios —
//! {0%, 10%} leak rate × {baseline, GOLF}.

use crate::service::{boot_service, read_latencies, ServiceConfig};
use golf_core::{GcMode, GolfConfig, PacerConfig, Session};
use golf_metrics::{percentile, Align, Table};
use golf_trace::MetricsRegistry;
use serde::{Deserialize, Serialize};

/// Experiment parameters (beyond the service workload itself).
#[derive(Debug, Clone)]
pub struct Table2Config {
    /// The base service workload (leak rate is overridden per scenario).
    pub service: ServiceConfig,
    /// Warm-up ticks discarded from measurements (the paper warms up 5 s).
    pub warmup_ticks: u64,
    /// Measured ticks (the paper measures 30 s; 1 tick ≈ 1 ms).
    pub run_ticks: u64,
    /// Leak rates (per mille) for the scenario columns.
    pub leak_rates: Vec<i64>,
    /// Force a collection at least this often (Go forces one every two
    /// minutes; scaled to the simulation).
    pub forced_gc_every: u64,
}

impl Default for Table2Config {
    fn default() -> Self {
        Table2Config {
            service: ServiceConfig::default(),
            warmup_ticks: 5_000,
            run_ticks: 30_000,
            leak_rates: vec![0, 100],
            forced_gc_every: 2_000,
        }
    }
}

/// Client-side metrics (latency in ticks ≈ ms).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClientMetrics {
    /// Requests per simulated second.
    pub throughput_rps: f64,
    /// Median latency.
    pub p50: f64,
    /// 90th percentile latency.
    pub p90: f64,
    /// 95th percentile latency.
    pub p95: f64,
    /// 99th percentile latency.
    pub p99: f64,
    /// 99.9th percentile latency.
    pub p999: f64,
    /// 99.995th percentile latency.
    pub p99995: f64,
    /// Maximum latency.
    pub max: f64,
}

/// Server-side metrics, mirroring Go's `MemStats` fields used in Table 2.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ServerMetrics {
    /// `StackInuse` (bytes).
    pub stack_inuse_bytes: u64,
    /// `HeapAlloc` (bytes).
    pub heap_alloc_bytes: u64,
    /// `HeapObjects`.
    pub heap_objects: u64,
    /// Blocked user goroutines at the end of the run (the leak inventory).
    pub blocked_goroutines: usize,
    /// `PauseTotalNs` — modeled stop-the-world nanoseconds (marking is
    /// concurrent in Go; only root setup, the marking-done handshake,
    /// GOLF's liveness checks and forced shutdowns pause the world).
    pub pause_total_ns: u64,
    /// `NumGC`.
    pub num_gc: u64,
    /// `PauseTotalNs / NumGC`.
    pub pause_per_cycle_ns: u64,
    /// GC CPU fraction: STW time over the run's wall-clock time.
    pub gc_cpu_fraction: f64,
    /// Deadlocks detected (GOLF only).
    pub deadlocks_detected: u64,
    /// Deadlocked goroutines reclaimed (GOLF only).
    pub deadlocks_reclaimed: u64,
}

impl ServerMetrics {
    /// Publishes this MemStats snapshot into a [`MetricsRegistry`] under
    /// `prefix` (e.g. `"golf.leak100."`): point-in-time sizes as gauges,
    /// cumulative GC/deadlock figures as counters. Names mirror Go's
    /// `runtime.MemStats` fields.
    pub fn publish(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_gauge(&format!("{prefix}stack_inuse_bytes"), self.stack_inuse_bytes as i64);
        registry.set_gauge(&format!("{prefix}heap_alloc_bytes"), self.heap_alloc_bytes as i64);
        registry.set_gauge(&format!("{prefix}heap_objects"), self.heap_objects as i64);
        registry.set_gauge(&format!("{prefix}blocked_goroutines"), self.blocked_goroutines as i64);
        registry.add(&format!("{prefix}pause_total_ns"), self.pause_total_ns);
        registry.add(&format!("{prefix}num_gc"), self.num_gc);
        registry.add(&format!("{prefix}deadlocks_detected"), self.deadlocks_detected);
        registry.add(&format!("{prefix}deadlocks_reclaimed"), self.deadlocks_reclaimed);
    }
}

/// One scenario's results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Leak rate in requests per mille.
    pub leak_per_mille: i64,
    /// Whether GOLF ran.
    pub golf: bool,
    /// Client-side metrics.
    pub client: ClientMetrics,
    /// Server-side metrics.
    pub server: ServerMetrics,
}

/// Runs one scenario.
pub fn run_scenario(config: &Table2Config, leak_per_mille: i64, golf: bool) -> ScenarioResult {
    let mut service = config.service.clone();
    service.leak_per_mille = leak_per_mille;
    let (vm, globals) = boot_service(&service);
    let mode = if golf { GcMode::Golf } else { GcMode::Baseline };
    // A service-scale pacer (Go would not collect a 64 MiB service heap at
    // microbenchmark frequencies), with STW pauses charged to the clock.
    let pacer = PacerConfig { min_trigger_bytes: 64 * 1024 * 1024, ..PacerConfig::default() };
    let mut session = Session::new(vm, mode, GolfConfig::default(), pacer);
    session.engine_mut().set_keep_history(false);
    session.charge_pauses(1_000_000); // 1 tick = 1 ms

    // Warm-up, then measure. Runs proceed in chunks with a forced
    // collection between chunks (Go's two-minute forced GC, scaled).
    let run_chunked = |session: &mut Session, total: u64| {
        let mut left = total;
        while left > 0 {
            let chunk = left.min(config.forced_gc_every.max(1));
            session.run(chunk);
            session.collect();
            left -= chunk;
        }
    };
    run_chunked(&mut session, config.warmup_ticks);
    let warm_count = read_latencies(session.vm(), globals).len();
    let pause_before = session.gc_totals().modeled_stw_total_ns;
    let wall = std::time::Instant::now();
    run_chunked(&mut session, config.run_ticks);
    let wall_ns = wall.elapsed().as_nanos() as u64;

    let all = read_latencies(session.vm(), globals);
    let lat = &all[warm_count.min(all.len())..];
    let seconds = config.run_ticks as f64 / 1_000.0;
    let client = ClientMetrics {
        throughput_rps: lat.len() as f64 / seconds,
        p50: percentile(lat, 50.0).unwrap_or(0.0),
        p90: percentile(lat, 90.0).unwrap_or(0.0),
        p95: percentile(lat, 95.0).unwrap_or(0.0),
        p99: percentile(lat, 99.0).unwrap_or(0.0),
        p999: percentile(lat, 99.9).unwrap_or(0.0),
        p99995: percentile(lat, 99.995).unwrap_or(0.0),
        max: percentile(lat, 100.0).unwrap_or(0.0),
    };

    let totals = *session.gc_totals();
    let heap = *session.vm().heap().stats();
    let server = ServerMetrics {
        stack_inuse_bytes: session.vm().stack_bytes() as u64,
        heap_alloc_bytes: heap.heap_alloc_bytes,
        heap_objects: heap.heap_objects,
        blocked_goroutines: session.vm().blocked_count(),
        pause_total_ns: totals.modeled_stw_total_ns - pause_before,
        num_gc: totals.num_gc,
        pause_per_cycle_ns: totals.modeled_stw_per_cycle_ns(),
        // STW time over simulated wall time (1 tick = 1 ms): the paper's
        // GCCPUFraction analogue.
        gc_cpu_fraction: {
            let _ = wall_ns;
            (totals.modeled_stw_total_ns - pause_before) as f64
                / (config.run_ticks as f64 * 1_000_000.0)
        },
        deadlocks_detected: totals.deadlocks_detected,
        deadlocks_reclaimed: totals.deadlocks_reclaimed,
    };

    ScenarioResult { leak_per_mille, golf, client, server }
}

/// The assembled Table 2: scenarios in (leak, collector) order.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Scenario results, `leak_rates × {baseline, golf}`.
    pub scenarios: Vec<ScenarioResult>,
}

/// Runs all scenarios.
pub fn run_table2(config: &Table2Config) -> Table2 {
    let mut scenarios = Vec::new();
    for &leak in &config.leak_rates {
        for golf in [false, true] {
            scenarios.push(run_scenario(config, leak, golf));
        }
    }
    Table2 { scenarios }
}

impl Table2 {
    /// All scenarios' server-side MemStats snapshots in one registry, keyed
    /// `{base|golf}.leak{rate}.{field}` — the service's expvar-style export.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        for s in &self.scenarios {
            let collector = if s.golf { "golf" } else { "base" };
            let prefix = format!("{collector}.leak{}.", s.leak_per_mille);
            s.server.publish(&prefix, &mut registry);
        }
        registry
    }

    /// Renders the paper-style comparison. For each leak rate, Base (B) and
    /// GOLF (G) columns plus the B/G ratio.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let leak_rates: Vec<i64> = {
            let mut v: Vec<i64> = self.scenarios.iter().map(|s| s.leak_per_mille).collect();
            v.dedup();
            v
        };
        for leak in leak_rates {
            let base = self
                .scenarios
                .iter()
                .find(|s| s.leak_per_mille == leak && !s.golf)
                .expect("baseline scenario");
            let golf = self
                .scenarios
                .iter()
                .find(|s| s.leak_per_mille == leak && s.golf)
                .expect("golf scenario");
            out.push_str(&format!("== Leaks in {:.0}% of requests ==\n", leak as f64 / 10.0));
            let mut t = Table::new(vec!["Metric", "Base (B)", "GOLF (G)", "B/G"]);
            for i in 1..4 {
                t.align(i, Align::Right);
            }
            let ratio = |b: f64, g: f64| {
                if g == 0.0 {
                    "—".to_string()
                } else {
                    format!("{:.2}", b / g)
                }
            };
            let mut row = |name: &str, b: f64, g: f64| {
                t.row(vec![name.to_string(), format!("{b:.2}"), format!("{g:.2}"), ratio(b, g)]);
            };
            row("Throughput (req./s)", base.client.throughput_rps, golf.client.throughput_rps);
            row("P50 latency (ms)", base.client.p50, golf.client.p50);
            row("P90 latency (ms)", base.client.p90, golf.client.p90);
            row("P95 latency (ms)", base.client.p95, golf.client.p95);
            row("P99 latency (ms)", base.client.p99, golf.client.p99);
            row("P99.9 latency (ms)", base.client.p999, golf.client.p999);
            row("P99.995 latency (ms)", base.client.p99995, golf.client.p99995);
            row("Maximum latency (ms)", base.client.max, golf.client.max);
            row(
                "Stack spans (MB) (StackInuse)",
                base.server.stack_inuse_bytes as f64 / 1e6,
                golf.server.stack_inuse_bytes as f64 / 1e6,
            );
            row(
                "Heap objects allocated (MB) (HeapAlloc)",
                base.server.heap_alloc_bytes as f64 / 1e6,
                golf.server.heap_alloc_bytes as f64 / 1e6,
            );
            row(
                "No. of objects (HeapObjects)",
                base.server.heap_objects as f64,
                golf.server.heap_objects as f64,
            );
            row(
                "GC fractional CPU utilization (%)",
                base.server.gc_cpu_fraction * 100.0,
                golf.server.gc_cpu_fraction * 100.0,
            );
            row(
                "GC pause time (ns) (PauseTotalNs)",
                base.server.pause_total_ns as f64,
                golf.server.pause_total_ns as f64,
            );
            row("No. of GC cycles (NumGC)", base.server.num_gc as f64, golf.server.num_gc as f64);
            row(
                "Pause time per cycle (ns)",
                base.server.pause_per_cycle_ns as f64,
                golf.server.pause_per_cycle_ns as f64,
            );
            row(
                "Blocked goroutines (leak inventory)",
                base.server.blocked_goroutines as f64,
                golf.server.blocked_goroutines as f64,
            );
            out.push_str(&t.render());
            out.push_str(&format!(
                "GOLF detected {} deadlocks, reclaimed {}\n\n",
                golf.server.deadlocks_detected, golf.server.deadlocks_reclaimed
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> Table2Config {
        Table2Config {
            service: ServiceConfig {
                connections: 8,
                rpc_ticks: 30,
                think_ticks: 5,
                map_bytes: 50_000,
                ..ServiceConfig::default()
            },
            warmup_ticks: 500,
            run_ticks: 4_000,
            leak_rates: vec![0, 100],
            forced_gc_every: 1_000,
        }
    }

    #[test]
    fn leaky_baseline_bloats_golf_reclaims() {
        let t = run_table2(&quick_config());
        assert_eq!(t.scenarios.len(), 4);
        let base_leak = &t.scenarios[2];
        let golf_leak = &t.scenarios[3];
        assert!(!base_leak.golf && golf_leak.golf);
        // The paper's headline: HeapAlloc ~49x smaller under GOLF at 10% leak.
        assert!(
            base_leak.server.heap_alloc_bytes > golf_leak.server.heap_alloc_bytes * 3,
            "base {} vs golf {}",
            base_leak.server.heap_alloc_bytes,
            golf_leak.server.heap_alloc_bytes
        );
        assert!(golf_leak.server.deadlocks_reclaimed > 0);
        // Leak-free: GOLF detects nothing.
        let golf_clean = &t.scenarios[1];
        assert_eq!(golf_clean.server.deadlocks_detected, 0);
        // Both clean scenarios serve comparable traffic.
        let base_clean = &t.scenarios[0];
        let tp_ratio = base_clean.client.throughput_rps / golf_clean.client.throughput_rps;
        assert!((0.8..1.25).contains(&tp_ratio), "throughput ratio {tp_ratio}");
        let rendered = t.render();
        assert!(rendered.contains("Leaks in 10% of requests"));
        assert!(rendered.contains("HeapAlloc"));
        // The MemStats registry export carries every scenario.
        let registry = t.metrics();
        assert!(registry.gauge("golf.leak100.heap_alloc_bytes").is_some());
        assert!(registry.counter("golf.leak100.deadlocks_reclaimed") > 0);
        assert_eq!(registry.counter("golf.leak0.deadlocks_detected"), 0);
        assert!(registry.gauge("base.leak0.heap_objects").is_some());
    }
}
