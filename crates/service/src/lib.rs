//! # golf-service
//!
//! The "real service" side of the reproduction: a simulated production
//! microservice with injectable goroutine leaks, a load-generating client,
//! `MemStats`-style metrics, a long-running deployment simulation, and the
//! synthetic test-suite corpus used to compare GOLF against GOLEAK.
//!
//! Experiment map (see DESIGN.md §4):
//!
//! * [`service`] + [`table2`] — the paper's **Table 2** (controlled
//!   service: throughput, latency percentiles, MemStats, GC metrics at
//!   0% / 10% leak rates, baseline vs GOLF).
//! * [`production`] — **Table 3** (P50/P99 latency and CPU ±σ under
//!   diurnal traffic).
//! * [`longrun`] — **Figure 1** (blocked goroutines over weeks of weekday
//!   redeploys; weekends spike).
//! * [`rq1c`] — **RQ1(c)** (a 24-hour five-instance deployment finding
//!   252 individual partial deadlocks from 3 programming errors).
//! * [`testcorpus`] — **Figure 3** / RQ1(b) (3 111 synthetic package test
//!   suites, GOLF vs GOLEAK individual/deduplicated report ratios).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod longrun;
pub mod production;
pub mod rq1c;
pub mod service;
pub mod table2;
pub mod testcorpus;

pub use service::{
    boot_service, build_service, read_completed, read_latencies, ServiceConfig, ServiceGlobals,
};
