//! The Table 3 experiment: the service under production-like conditions —
//! diurnal traffic, measurement noise, a low-rate real leak — emitting
//! latency and CPU metrics in fixed windows, baseline vs GOLF.

use crate::service::{read_latencies, ServiceConfig, ServiceGlobals};
use golf_core::{GcMode, GolfConfig, PacerConfig, Session};
use golf_metrics::{mean_std, percentile, Align, MeanStd, Table};
use golf_runtime::{BinOp, FuncBuilder, ProgramSet, SelectSpec, Value, Vm, VmConfig};

/// Production-experiment parameters.
#[derive(Debug, Clone)]
pub struct ProductionConfig {
    /// Base workload (think time is modulated; leak rate applies).
    pub service: ServiceConfig,
    /// Metric-emission window in ticks (the paper's services emit every
    /// three minutes; we compress time).
    pub window_ticks: u64,
    /// Number of windows (the paper observes 32 hours ≈ 640 windows).
    pub windows: usize,
    /// Diurnal period, in windows.
    pub diurnal_period: usize,
    /// Peak-to-trough think-time swing (1.0 = think time doubles at
    /// trough).
    pub diurnal_amplitude: f64,
}

impl Default for ProductionConfig {
    fn default() -> Self {
        ProductionConfig {
            service: ServiceConfig { leak_per_mille: 5, ..ServiceConfig::default() },
            window_ticks: 1_500,
            windows: 160,
            diurnal_period: 40,
            diurnal_amplitude: 1.0,
        }
    }
}

/// Builds the production service: like the controlled service, but with a
/// think-time cell modulated by an in-guest scheduler following a
/// precomputed diurnal curve.
fn build_production(config: &ProductionConfig) -> (ProgramSet, ServiceGlobals) {
    let c = &config.service;
    let mut p = ProgramSet::new();
    let latencies = p.global("latencies");
    let completed = p.global("completed");
    let think_global = p.global("think");
    let child_site = p.site("handleRequest:child");
    let conn_site = p.site("main:conn");
    let mod_site = p.site("main:modulator");

    // child — identical to the controlled service.
    let mut b = FuncBuilder::new("child", 3);
    let ch1 = b.param(0);
    let ch2 = b.param(1);
    let leak = b.param(2);
    let map = b.var("child_map");
    b.new_blob(map, c.map_bytes);
    let v = b.int(1);
    b.send(ch1, v);
    b.if_then(leak, |b| b.send(ch2, v));
    b.ret(None);
    let child = p.define(b);

    let mut b = FuncBuilder::new("handle_request", 2);
    let lat = b.param(0);
    let counter = b.param(1);
    let t0 = b.var("t0");
    b.now_tick(t0);
    b.sleep(c.rpc_ticks.max(1));
    let pmap = b.var("parent_map");
    b.new_blob(pmap, c.map_bytes);
    let ch1 = b.var("ch1");
    let ch2 = b.var("ch2");
    b.make_chan(ch1, 0);
    b.make_chan(ch2, 0);
    let leak = b.var("leak");
    b.rand_chance(leak, c.leak_per_mille, 1000);
    b.go(child, &[ch1, ch2, leak], child_site);
    let l1 = b.label();
    let l2 = b.label();
    let done = b.label();
    b.select(SelectSpec::new().recv(ch1, None, l1).recv(ch2, None, l2));
    b.bind(l1);
    b.jump(done);
    b.bind(l2);
    b.bind(done);
    let t1 = b.var("t1");
    let dt = b.var("dt");
    b.now_tick(t1);
    b.bin(BinOp::Sub, dt, t1, t0);
    b.slice_push(lat, dt);
    let cc = b.var("c");
    let one = b.int(1);
    b.cell_get(cc, counter);
    b.bin(BinOp::Add, cc, cc, one);
    b.cell_set(counter, cc);
    b.ret(None);
    let handle = p.define(b);

    // conn: think time read from the modulated cell each iteration.
    let mut b = FuncBuilder::new("conn", 3); // lat, counter, think_cell
    let lat = b.param(0);
    let counter = b.param(1);
    let think_cell = b.param(2);
    b.forever(|b| {
        let t = b.var("t");
        b.cell_get(t, think_cell);
        b.sleep_var(t);
        b.call(handle, &[lat, counter], None);
    });
    let conn = p.define(b);

    // modulator: walks the precomputed schedule, one entry per window.
    let mut b = FuncBuilder::new("modulator", 2); // think_cell, schedule
    let think_cell = b.param(0);
    let schedule = b.param(1);
    let n = b.var("n");
    b.slice_len(n, schedule);
    let i = b.int(0);
    let one = b.int(1);
    let window = config.window_ticks.max(1);
    b.forever(|b| {
        let in_range = b.var("in_range");
        b.bin(BinOp::Lt, in_range, i, n);
        let skip = b.label();
        b.jump_if_not(in_range, skip);
        let v = b.var("v");
        b.slice_get(v, schedule, i);
        b.cell_set(think_cell, v);
        b.bin(BinOp::Add, i, i, one);
        b.bind(skip);
        b.sleep(window);
    });
    let modulator = p.define(b);

    // Precompute the diurnal think-time schedule.
    let base_think = c.think_ticks.max(1) as f64;
    let schedule_vals: Vec<i64> = (0..config.windows)
        .map(|w| {
            let phase = (w % config.diurnal_period) as f64 / config.diurnal_period as f64
                * std::f64::consts::TAU;
            let factor = 1.0
                + config.diurnal_amplitude * 0.5 * (1.0 - phase.cos()) / 2.0
                + config.diurnal_amplitude * 0.5 * ((w * 2654435761) % 97) as f64 / 970.0;
            (base_think * factor).round().max(1.0) as i64
        })
        .collect();

    // main: shared state, schedule slice, modulator, connections, park.
    let mut b = FuncBuilder::new("main", 0);
    let lat = b.var("lat");
    b.new_slice(lat);
    b.set_global(latencies, lat);
    let counter = b.var("counter");
    let zero = b.int(0);
    b.new_cell(counter, zero);
    b.set_global(completed, counter);
    let think_cell = b.var("think_cell");
    let init_think = b.int(c.think_ticks.max(1) as i64);
    b.new_cell(think_cell, init_think);
    b.set_global(think_global, think_cell);
    let schedule = b.var("schedule");
    b.new_slice(schedule);
    let tmp = b.var("tmp");
    for v in schedule_vals {
        b.konst(tmp, Value::Int(v));
        b.slice_push(schedule, tmp);
    }
    b.go(modulator, &[think_cell, schedule], mod_site);
    b.repeat(c.connections as i64, |b, _| {
        b.go(conn, &[lat, counter, think_cell], conn_site);
    });
    b.forever(|b| b.sleep(10_000));
    p.define(b);

    (p, ServiceGlobals { latencies, completed })
}

/// Per-collector production metrics.
#[derive(Debug, Clone)]
pub struct ProductionResult {
    /// Whether GOLF ran.
    pub golf: bool,
    /// Windowed P50 latency, aggregated mean ± std.
    pub p50_latency: MeanStd,
    /// Windowed P99 latency, aggregated mean ± std.
    pub p99_latency: MeanStd,
    /// Windowed CPU-utilization proxy (%), mean ± std. Computed as
    /// instructions executed per window over the window's execution budget.
    pub cpu_pct: MeanStd,
    /// Deadlocks detected over the run (GOLF only).
    pub deadlocks_detected: u64,
}

/// Runs the production experiment under one collector.
pub fn run_production(config: &ProductionConfig, golf: bool) -> ProductionResult {
    let (p, globals) = build_production(config);
    let vm = Vm::boot(
        p,
        VmConfig {
            gomaxprocs: config.service.server_procs,
            seed: config.service.seed,
            assist: config.service.assist,
            ..VmConfig::default()
        },
    );
    let mode = if golf { GcMode::Golf } else { GcMode::Baseline };
    let pacer = PacerConfig { min_trigger_bytes: 64 * 1024 * 1024, ..PacerConfig::default() };
    let mut session = Session::new(vm, mode, GolfConfig::default(), pacer);
    session.engine_mut().set_keep_history(false);
    session.charge_pauses(1_000_000);

    let mut p50s = Vec::new();
    let mut p99s = Vec::new();
    let mut cpus = Vec::new();
    let mut seen = 0usize;
    let mut instrs_prev = session.vm().instrs_executed();
    let budget_per_window = (config.window_ticks
        * config.service.server_procs as u64
        * u64::from(session.vm().config().max_quantum)) as f64;
    for _ in 0..config.windows {
        session.run(config.window_ticks);
        // Go's runtime forces a collection at least every two minutes even
        // when the pacer is quiet; one per emission window models that.
        session.collect();
        let all = read_latencies(session.vm(), globals);
        let fresh: Vec<f64> = all[seen.min(all.len())..].to_vec();
        seen = all.len();
        if let Some(p50) = percentile(&fresh, 50.0) {
            p50s.push(p50);
        }
        if let Some(p99) = percentile(&fresh, 99.0) {
            p99s.push(p99);
        }
        let instrs_now = session.vm().instrs_executed();
        cpus.push(100.0 * (instrs_now - instrs_prev) as f64 / budget_per_window);
        instrs_prev = instrs_now;
    }

    ProductionResult {
        golf,
        p50_latency: mean_std(&p50s).unwrap_or(MeanStd { mean: 0.0, std: 0.0, n: 0 }),
        p99_latency: mean_std(&p99s).unwrap_or(MeanStd { mean: 0.0, std: 0.0, n: 0 }),
        cpu_pct: mean_std(&cpus).unwrap_or(MeanStd { mean: 0.0, std: 0.0, n: 0 }),
        deadlocks_detected: session.gc_totals().deadlocks_detected,
    }
}

/// Renders the paper-style Table 3.
pub fn render_table3(baseline: &ProductionResult, golf: &ProductionResult) -> String {
    let mut t = Table::new(vec!["", "", "Latency (ms)", "CPU Usage (%)"]);
    t.align(2, Align::Right).align(3, Align::Right);
    t.row(vec![
        "P50".into(),
        "Baseline".into(),
        baseline.p50_latency.to_string(),
        baseline.cpu_pct.to_string(),
    ]);
    t.row(vec!["".into(), "GOLF".into(), golf.p50_latency.to_string(), golf.cpu_pct.to_string()]);
    t.row(vec![
        "P99".into(),
        "Baseline".into(),
        baseline.p99_latency.to_string(),
        baseline.cpu_pct.to_string(),
    ]);
    t.row(vec!["".into(), "GOLF".into(), golf.p99_latency.to_string(), golf.cpu_pct.to_string()]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ProductionConfig {
        ProductionConfig {
            service: ServiceConfig {
                connections: 6,
                rpc_ticks: 20,
                think_ticks: 5,
                map_bytes: 10_000,
                leak_per_mille: 20,
                ..ServiceConfig::default()
            },
            window_ticks: 400,
            windows: 10,
            diurnal_period: 5,
            diurnal_amplitude: 1.0,
        }
    }

    #[test]
    fn production_run_produces_windows_and_detections() {
        let base = run_production(&quick(), false);
        let golf = run_production(&quick(), true);
        assert!(base.p50_latency.n >= 8, "windows with data: {}", base.p50_latency.n);
        assert!(golf.deadlocks_detected > 0, "GOLF saw the production leak");
        assert_eq!(base.deadlocks_detected, 0);
        // Latency medians are in the same ballpark: GOLF does not impinge
        // on production performance (paper Table 3's takeaway).
        let ratio = golf.p50_latency.mean / base.p50_latency.mean;
        assert!((0.7..1.4).contains(&ratio), "p50 ratio {ratio}");
        let rendered = render_table3(&base, &golf);
        assert!(rendered.contains("P99"));
    }
}
