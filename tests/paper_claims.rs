//! Cross-crate integration tests asserting the paper's headline claims at
//! reduced scale (full-scale regeneration lives in `golf-bench`'s bins).

use golf::core::{GcEngine, GcMode, GolfConfig, Session};
use golf::detectors::{find_leaks, GoleakOptions};
use golf::micro::{corpus, run_benchmark, RunSettings, Table1Config};
use golf::runtime::{FuncBuilder, ProgramSet, Vm, VmConfig};
use golf::service::testcorpus::{run_corpus, CorpusConfig};

/// §6.2 RQ1(a): GOLF detects the deterministic microbenchmarks in every
/// run, across core counts.
#[test]
fn table1_deterministic_benchmarks_are_always_detected() {
    let all = corpus();
    let subset: Vec<_> = all
        .into_iter()
        .filter(|b| {
            ["cgo/double-send", "cockroach/584", "moby/21233", "etcd/7902"].contains(&b.name)
        })
        .collect();
    assert_eq!(subset.len(), 4);
    let t = golf::micro::run_table1_on(
        &subset,
        &Table1Config { procs: vec![1, 4], runs: 5, ..Table1Config::default() },
    );
    assert!(t.rows.iter().all(|r| r.perfect()), "{:#?}", t.rows);
    assert_eq!(t.unexpected_reports, 0);
}

/// §6.2 RQ1(a): the etcd/7443 pattern is a near-total false negative —
/// shielded by a runaway-live keeper.
#[test]
fn table1_etcd_shape_is_shielded() {
    let all = corpus();
    let etcd = all.into_iter().find(|b| b.name == "etcd/7443").unwrap();
    let mut detected = 0;
    for seed in 0..5 {
        let r = run_benchmark(&etcd, &RunSettings { procs: 1, seed, ..RunSettings::default() });
        detected += r.detected_sites.len();
    }
    assert_eq!(detected, 0, "etcd/7443 must be invisible at one core");
}

/// §6.1 RQ1(b): every deadlock GOLF reports is also reported by GOLEAK
/// (GOLF ⊆ GOLEAK by design), on the same execution.
#[test]
fn golf_reports_are_a_subset_of_goleak() {
    for mb in corpus().iter().filter(|b| b.flakiness == 1).take(20) {
        let vm = Vm::boot((mb.build)(1), VmConfig { seed: 7, ..VmConfig::default() });
        let mut session = Session::golf_report_only(vm);
        session.run(3_000);
        session.collect();
        let leaks = find_leaks(session.vm(), GoleakOptions::default());
        let goleak_keys: std::collections::HashSet<_> =
            leaks.iter().map(|l| l.dedup_key()).collect();
        for r in session.reports() {
            assert!(
                goleak_keys.contains(&r.dedup_key()),
                "{}: GOLF report {:?} not seen by GOLEAK ({goleak_keys:?})",
                mb.name,
                r.dedup_key()
            );
        }
    }
}

/// §5.2: GOLF performs the same aggregate marking work as the baseline —
/// the same pointer traversals, just partitioned over more iterations.
#[test]
fn marking_work_is_invariant_across_collectors() {
    // A correct program with a deep live structure and live goroutines.
    let build = || {
        let mut p = ProgramSet::new();
        let site = p.site("main:worker");
        let mut b = FuncBuilder::new("worker", 1);
        let ch = b.param(0);
        b.recv(ch, None);
        b.ret(None);
        let worker = p.define(b);
        let mut b = FuncBuilder::new("main", 0);
        // A linked list of 50 cells.
        let head = b.var("head");
        let tmp = b.var("tmp");
        let nil = b.var("nil");
        b.new_cell(head, nil);
        b.repeat(50, |b, _| {
            b.new_cell(tmp, head);
            b.copy(head, tmp);
        });
        // Three goroutines blocked on channels main keeps alive.
        let chans: Vec<_> = (0..3).map(|i| b.var(&format!("ch{i}"))).collect();
        for &ch in &chans {
            b.make_chan(ch, 0);
            b.go(worker, &[ch], site);
        }
        b.sleep(1_000_000);
        p.define(b);
        p
    };

    let mut vm_base = Vm::boot(build(), VmConfig::default());
    vm_base.run(300);
    let mut vm_golf = Vm::boot(build(), VmConfig::default());
    vm_golf.run(300);

    let base = GcEngine::baseline().collect(&mut vm_base);
    let golf = GcEngine::golf().collect(&mut vm_golf);

    assert_eq!(base.objects_marked, golf.objects_marked, "same live set");
    assert!(golf.mark_iterations > base.mark_iterations, "GOLF iterates");
    // Same aggregate marking work, within the slack of re-pushed roots.
    let diff = golf.pointer_traversals.abs_diff(base.pointer_traversals);
    assert!(
        diff <= base.pointer_traversals / 10 + 8,
        "traversals: baseline {} vs golf {}",
        base.pointer_traversals,
        golf.pointer_traversals
    );
    assert_eq!(golf.deadlocks_detected, 0, "correct program");
}

/// §6.2: detection every 10th cycle loses nothing for stable leaks.
#[test]
fn detect_every_10_has_same_efficacy() {
    let run_with = |detect_every: u32| {
        let mb_all = corpus();
        let mb = mb_all.iter().find(|b| b.name == "cgo/unused-done").unwrap();
        let vm = Vm::boot((mb.build)(1), VmConfig::default());
        let mut session = Session::new(
            vm,
            GcMode::Golf,
            GolfConfig { detect_every, reclaim: true, ..GolfConfig::default() },
            golf::core::PacerConfig::default(),
        );
        session.run(2_000);
        // Give the every-10th configuration its ten cycles.
        for _ in 0..10 {
            session.collect();
        }
        session.reports().len()
    };
    assert_eq!(run_with(1), run_with(10), "same deadlocks found either way");
}

/// RQ1(b) anatomy at reduced scale: GOLF finds ~60% of GOLEAK's individual
/// reports and ~50% of its deduplicated ones.
#[test]
fn corpus_ratios_match_paper_shape() {
    let r = run_corpus(&CorpusConfig {
        packages: 400,
        visible_sites: 60,
        invisible_sites: 59,
        ..CorpusConfig::default()
    });
    let individual = r.golf_total as f64 / r.goleak_total as f64;
    let dedup = r.golf_dedup as f64 / r.goleak_dedup as f64;
    assert!((0.5..0.72).contains(&individual), "individual ratio {individual}");
    assert!((0.4..0.62).contains(&dedup), "dedup ratio {dedup}");
    assert!((0.7..0.92).contains(&r.auc), "auc {}", r.auc);
}

/// The whole pipeline is deterministic: same seeds, same table.
#[test]
fn table1_is_deterministic() {
    let all = corpus();
    let subset: Vec<_> = all.into_iter().filter(|b| b.name.starts_with("grpc/3017")).collect();
    let cfg = Table1Config { procs: vec![1, 2], runs: 4, threads: 2, ..Table1Config::default() };
    let t1 = golf::micro::run_table1_on(&subset, &cfg);
    let t2 = golf::micro::run_table1_on(&subset, &cfg);
    let counts =
        |t: &golf::micro::Table1| t.rows.iter().map(|r| r.per_proc.clone()).collect::<Vec<_>>();
    assert_eq!(counts(&t1), counts(&t2));
}
